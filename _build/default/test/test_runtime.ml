(* Tests for Bohm_runtime: the deterministic simulator, the real domains
   runtime, and the runtime-generic sync primitives. *)

module Rng = Bohm_util.Rng
module Sim = Bohm_runtime.Sim
module Real = Bohm_runtime.Real
module Costs = Bohm_runtime.Costs

module Sim_sync = Bohm_runtime.Sync.Make (Sim)
module Real_sync = Bohm_runtime.Sync.Make (Real)

let () = Costs.defaults ()

(* --- Simulator basics --- *)

let test_sim_returns_value () =
  Alcotest.(check int) "value" 42 (Sim.run (fun () -> 42))

let test_sim_counter_faa () =
  let total =
    Sim.run (fun () ->
        let c = Sim.Cell.make 0 in
        let worker () =
          for _ = 1 to 1000 do
            ignore (Sim.Cell.faa c 1)
          done
        in
        let threads = List.init 4 (fun _ -> Sim.spawn worker) in
        List.iter Sim.join threads;
        Sim.Cell.get c)
  in
  Alcotest.(check int) "all increments counted" 4000 total

let test_sim_cas_exclusive () =
  (* Exactly one thread wins each CAS from the same expected value. *)
  let winners =
    Sim.run (fun () ->
        let c = Sim.Cell.make 0 in
        let wins = Sim.Cell.make 0 in
        let worker () = if Sim.Cell.cas c 0 1 then Sim.Cell.incr wins in
        let threads = List.init 8 (fun _ -> Sim.spawn worker) in
        List.iter Sim.join threads;
        Sim.Cell.get wins)
  in
  Alcotest.(check int) "one winner" 1 winners

let test_sim_deterministic () =
  let run () =
    Sim.run (fun () ->
        let c = Sim.Cell.make 0 in
        let worker id () =
          for i = 1 to 100 do
            Sim.work (10 + ((id + i) mod 7));
            ignore (Sim.Cell.faa c 1)
          done
        in
        let threads = List.init 6 (fun id -> Sim.spawn (worker id)) in
        List.iter Sim.join threads;
        Sim.now ())
  in
  let t1 = run () and s1 = Sim.steps () in
  let t2 = run () and s2 = Sim.steps () in
  Alcotest.(check (float 0.)) "same virtual time" t1 t2;
  Alcotest.(check int) "same step count" s1 s2

let test_sim_jitter_deterministic_given_seed () =
  let run seed =
    Sim.run ~jitter:(Rng.create ~seed) (fun () ->
        let c = Sim.Cell.make 0 in
        let worker () =
          for _ = 1 to 50 do
            ignore (Sim.Cell.faa c 1)
          done
        in
        let threads = List.init 4 (fun _ -> Sim.spawn worker) in
        List.iter Sim.join threads;
        Sim.now ())
  in
  Alcotest.(check (float 0.)) "same seed same schedule" (run 5) (run 5)

let test_sim_work_advances_clock () =
  let elapsed =
    Sim.run (fun () ->
        Sim.work 2_000_000;
        Sim.now ())
  in
  (* 2M cycles at 2 GHz = 1 ms. *)
  Alcotest.(check (float 1e-9)) "1ms" 0.001 elapsed

let test_sim_without_cost_is_free () =
  let elapsed =
    Sim.run (fun () ->
        Sim.without_cost (fun () -> Sim.work 10_000_000);
        Sim.now ())
  in
  Alcotest.(check (float 1e-12)) "free" 0. elapsed

let test_sim_copy_charges_bandwidth () =
  let elapsed =
    Sim.run (fun () ->
        Sim.copy ~bytes:4_000_000;
        Sim.now ())
  in
  let expected = 4_000_000. /. float_of_int !Costs.bytes_per_cycle /. 2.0e9 in
  Alcotest.(check (float 1e-9)) "bandwidth charge" expected elapsed

let test_sim_join_propagates_clock () =
  let elapsed =
    Sim.run (fun () ->
        let t = Sim.spawn (fun () -> Sim.work 1_000_000) in
        Sim.join t;
        Sim.now ())
  in
  Alcotest.(check bool) "joiner sees child time" true (elapsed >= 0.0005)

let test_sim_join_finished_thread () =
  let v =
    Sim.run (fun () ->
        let c = Sim.Cell.make 0 in
        let t = Sim.spawn (fun () -> Sim.Cell.set c 7) in
        (* Let the child certainly finish first. *)
        Sim.work 1_000_000;
        Sim.join t;
        Sim.Cell.get c)
  in
  Alcotest.(check int) "set visible after join" 7 v

let test_sim_contended_faa_serializes () =
  (* N threads hammering one cell must take at least
     N * ops * (atomic_rmw + line_transfer) cycles of virtual time. *)
  let n = 4 and ops = 500 in
  let elapsed =
    Sim.run (fun () ->
        let c = Sim.Cell.make 0 in
        let worker () =
          for _ = 1 to ops do
            ignore (Sim.Cell.faa c 1)
          done
        in
        let threads = List.init n (fun _ -> Sim.spawn worker) in
        List.iter Sim.join threads;
        Sim.now ())
  in
  let serial_floor =
    float_of_int (n * ops * (!Costs.atomic_rmw + !Costs.line_transfer))
    /. 2.0e9
  in
  (* Threads start staggered by [spawn_cost], so the first few operations
     per thread are uncontended; allow 5% slack on the serial floor. *)
  Alcotest.(check bool)
    (Printf.sprintf "elapsed %.6f >= serial floor %.6f" elapsed serial_floor)
    true
    (elapsed >= serial_floor *. 0.95)

let test_sim_uncontended_cells_scale () =
  (* Threads on private cells should not serialize: makespan ~= one
     thread's work, far below the serialized floor. *)
  let n = 4 and ops = 500 in
  let elapsed =
    Sim.run (fun () ->
        let worker () =
          let c = Sim.Cell.make 0 in
          for _ = 1 to ops do
            ignore (Sim.Cell.faa c 1)
          done
        in
        let threads = List.init n (fun _ -> Sim.spawn worker) in
        List.iter Sim.join threads;
        Sim.now ())
  in
  let serialized =
    float_of_int (n * ops * (!Costs.atomic_rmw + !Costs.line_transfer))
    /. 2.0e9
  in
  Alcotest.(check bool) "parallel speedup" true (elapsed < serialized /. 2.)

let test_sim_deadlock_detected () =
  Alcotest.(check bool) "deadlock raised" true
    (try
       Sim.run (fun () ->
           let c = Sim.Cell.make 0 in
           Sim_sync.spin_until (fun () -> Sim.Cell.get c = 1));
       false
     with Sim.Deadlock _ -> true)

let test_sim_nested_run_rejected () =
  Alcotest.(check bool) "nested rejected" true
    (try
       Sim.run (fun () -> Sim.run (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_sim_exception_propagates () =
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      Sim.run (fun () -> failwith "boom"))

let test_sim_many_threads () =
  let total =
    Sim.run (fun () ->
        let c = Sim.Cell.make 0 in
        let threads =
          List.init 44 (fun _ -> Sim.spawn (fun () -> Sim.Cell.incr c))
        in
        List.iter Sim.join threads;
        Sim.Cell.get c)
  in
  Alcotest.(check int) "44 threads" 44 total

let test_sim_visibility_order () =
  (* Writer publishes data then flag; a reader that sees the flag must see
     the data (sequential consistency of the simulated memory). *)
  let ok =
    Sim.run (fun () ->
        let data = Sim.Cell.make 0 and flag = Sim.Cell.make 0 in
        let writer () =
          Sim.Cell.set data 99;
          Sim.Cell.set flag 1
        in
        let result = Sim.Cell.make (-1) in
        let reader () =
          Sim_sync.spin_until (fun () -> Sim.Cell.get flag = 1);
          Sim.Cell.set result (Sim.Cell.get data)
        in
        let r = Sim.spawn reader in
        let w = Sim.spawn writer in
        Sim.join r;
        Sim.join w;
        Sim.Cell.get result)
  in
  Alcotest.(check int) "flag implies data" 99 ok

(* --- Sync primitives on the simulator --- *)

let test_sim_barrier_rounds () =
  let rounds = 5 and parties = 4 in
  let ok =
    Sim.run (fun () ->
        let barrier = Sim_sync.Barrier.create ~parties in
        let counter = Sim.Cell.make 0 in
        let violations = Sim.Cell.make 0 in
        let worker () =
          for r = 1 to rounds do
            Sim.Cell.incr counter;
            Sim_sync.Barrier.await barrier;
            (* After the barrier every party of this round has counted. *)
            if Sim.Cell.get counter < r * parties then Sim.Cell.incr violations;
            Sim_sync.Barrier.await barrier
          done
        in
        let threads = List.init parties (fun _ -> Sim.spawn worker) in
        List.iter Sim.join threads;
        (Sim.Cell.get violations, Sim_sync.Barrier.rounds barrier))
  in
  Alcotest.(check int) "no violations" 0 (fst ok);
  Alcotest.(check int) "rounds counted" (2 * rounds) (snd ok)

let test_sim_spinlock_mutual_exclusion () =
  (* Unprotected read-modify-write under a lock must not lose updates. *)
  let total =
    Sim.run (fun () ->
        let lock = Sim_sync.Spinlock.create () in
        let shared = Sim.Cell.make 0 in
        let worker () =
          for _ = 1 to 200 do
            Sim_sync.Spinlock.acquire lock;
            let v = Sim.Cell.get shared in
            Sim.work 5;
            Sim.Cell.set shared (v + 1);
            Sim_sync.Spinlock.release lock
          done
        in
        let threads = List.init 4 (fun _ -> Sim.spawn worker) in
        List.iter Sim.join threads;
        Sim.Cell.get shared)
  in
  Alcotest.(check int) "no lost updates" 800 total

let test_sim_try_acquire () =
  let ok =
    Sim.run (fun () ->
        let lock = Sim_sync.Spinlock.create () in
        let first = Sim_sync.Spinlock.try_acquire lock in
        let second = Sim_sync.Spinlock.try_acquire lock in
        Sim_sync.Spinlock.release lock;
        let third = Sim_sync.Spinlock.try_acquire lock in
        (first, second, third))
  in
  Alcotest.(check (triple bool bool bool)) "try semantics" (true, false, true) ok

let test_sim_spin_until_immediate () =
  Sim.run (fun () -> Sim_sync.spin_until (fun () -> true));
  ()

(* --- Real runtime (true parallelism, small thread counts) --- *)

let test_real_counter () =
  let c = Real.Cell.make 0 in
  let worker () =
    for _ = 1 to 10_000 do
      ignore (Real.Cell.faa c 1)
    done
  in
  let threads = List.init 4 (fun _ -> Real.spawn worker) in
  List.iter Real.join threads;
  Alcotest.(check int) "atomic increments" 40_000 (Real.Cell.get c)

let test_real_spinlock_mutual_exclusion () =
  let lock = Real_sync.Spinlock.create () in
  let shared = ref 0 in
  let worker () =
    for _ = 1 to 5_000 do
      Real_sync.Spinlock.acquire lock;
      (* Plain ref: only safe because the lock serializes access. *)
      shared := !shared + 1;
      Real_sync.Spinlock.release lock
    done
  in
  let threads = List.init 4 (fun _ -> Real.spawn worker) in
  List.iter Real.join threads;
  Alcotest.(check int) "no lost updates" 20_000 !shared

let test_real_barrier () =
  let parties = 4 and rounds = 20 in
  let barrier = Real_sync.Barrier.create ~parties in
  let counter = Real.Cell.make 0 in
  let violations = Real.Cell.make 0 in
  let worker () =
    for r = 1 to rounds do
      Real.Cell.incr counter;
      Real_sync.Barrier.await barrier;
      if Real.Cell.get counter < r * parties then Real.Cell.incr violations;
      Real_sync.Barrier.await barrier
    done
  in
  let threads = List.init parties (fun _ -> Real.spawn worker) in
  List.iter Real.join threads;
  Alcotest.(check int) "no violations" 0 (Real.Cell.get violations)

let test_real_cas () =
  let c = Real.Cell.make 0 in
  let wins = Real.Cell.make 0 in
  let worker () = if Real.Cell.cas c 0 1 then Real.Cell.incr wins in
  let threads = List.init 4 (fun _ -> Real.spawn worker) in
  List.iter Real.join threads;
  Alcotest.(check int) "single winner" 1 (Real.Cell.get wins)

(* --- Property tests --- *)

let prop_sim_counter_always_exact =
  QCheck.Test.make ~count:25 ~name:"sim faa never loses increments"
    QCheck.(pair (int_range 1 8) (int_range 1 300))
    (fun (threads, ops) ->
      Sim.run (fun () ->
          let c = Sim.Cell.make 0 in
          let worker () =
            for _ = 1 to ops do
              ignore (Sim.Cell.faa c 1)
            done
          in
          let ts = List.init threads (fun _ -> Sim.spawn worker) in
          List.iter Sim.join ts;
          Sim.Cell.get c)
      = threads * ops)

let prop_sim_jitter_preserves_counter =
  QCheck.Test.make ~count:25 ~name:"random schedules preserve atomicity"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      Sim.run ~jitter:(Rng.create ~seed) (fun () ->
          let c = Sim.Cell.make 0 in
          let lock = Sim_sync.Spinlock.create () in
          let worker () =
            for _ = 1 to 50 do
              Sim_sync.Spinlock.acquire lock;
              let v = Sim.Cell.get c in
              Sim.Cell.set c (v + 1);
              Sim_sync.Spinlock.release lock
            done
          in
          let ts = List.init 5 (fun _ -> Sim.spawn worker) in
          List.iter Sim.join ts;
          Sim.Cell.get c)
      = 250)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "sim",
      [
        Alcotest.test_case "returns value" `Quick test_sim_returns_value;
        Alcotest.test_case "counter faa" `Quick test_sim_counter_faa;
        Alcotest.test_case "cas exclusive" `Quick test_sim_cas_exclusive;
        Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
        Alcotest.test_case "jitter deterministic" `Quick test_sim_jitter_deterministic_given_seed;
        Alcotest.test_case "work advances clock" `Quick test_sim_work_advances_clock;
        Alcotest.test_case "without_cost free" `Quick test_sim_without_cost_is_free;
        Alcotest.test_case "copy charges bandwidth" `Quick test_sim_copy_charges_bandwidth;
        Alcotest.test_case "join propagates clock" `Quick test_sim_join_propagates_clock;
        Alcotest.test_case "join finished thread" `Quick test_sim_join_finished_thread;
        Alcotest.test_case "contended faa serializes" `Quick test_sim_contended_faa_serializes;
        Alcotest.test_case "uncontended cells scale" `Quick test_sim_uncontended_cells_scale;
        Alcotest.test_case "deadlock detected" `Quick test_sim_deadlock_detected;
        Alcotest.test_case "nested run rejected" `Quick test_sim_nested_run_rejected;
        Alcotest.test_case "exception propagates" `Quick test_sim_exception_propagates;
        Alcotest.test_case "many threads" `Quick test_sim_many_threads;
        Alcotest.test_case "visibility order" `Quick test_sim_visibility_order;
      ]
      @ qcheck [ prop_sim_counter_always_exact; prop_sim_jitter_preserves_counter ] );
    ( "sim-sync",
      [
        Alcotest.test_case "barrier rounds" `Quick test_sim_barrier_rounds;
        Alcotest.test_case "spinlock mutual exclusion" `Quick test_sim_spinlock_mutual_exclusion;
        Alcotest.test_case "try_acquire" `Quick test_sim_try_acquire;
        Alcotest.test_case "spin_until immediate" `Quick test_sim_spin_until_immediate;
      ] );
    ( "real",
      [
        Alcotest.test_case "counter" `Quick test_real_counter;
        Alcotest.test_case "spinlock mutual exclusion" `Quick test_real_spinlock_mutual_exclusion;
        Alcotest.test_case "barrier" `Quick test_real_barrier;
        Alcotest.test_case "cas" `Quick test_real_cas;
      ] );
  ]

let () = Alcotest.run "bohm_runtime" suite
