(* End-to-end serializability certification: reconstruct the
   serialization graph of real engine executions and check it for cycles
   (Adya et al., paper §2.2). The serializable engines must produce
   acyclic graphs under every randomized schedule; Snapshot Isolation must
   produce a genuine cycle on some schedule. *)

module Key = Bohm_txn.Key
module Value = Bohm_txn.Value
module Stats = Bohm_txn.Stats
module Table = Bohm_storage.Table
module Rng = Bohm_util.Rng
module Sim = Bohm_runtime.Sim
module Check = Bohm_harness.Serialization_check
module Reference = Bohm_harness.Reference

module Bohm = Bohm_core.Engine.Make (Sim)
module Mv = Bohm_hekaton.Engine.Make (Sim)
module Silo = Bohm_silo.Engine.Make (Sim)
module Twopl = Bohm_twopl.Engine.Make (Sim)

let rows = 24
let tables = [| Table.make ~tid:0 ~name:"t" ~rows ~record_bytes:8 |]

type engine_under_test = {
  name : string;
  execute : jitter:Rng.t -> Bohm_txn.Txn.t array -> Key.t -> Value.t;
      (* runs the txns, returns the final-state reader *)
}

let bohm_ngin =
  {
    name = "bohm";
    execute =
      (fun ~jitter txns ->
        Sim.run ~jitter (fun () ->
            let db =
              Bohm.create
                (Bohm_core.Config.make ~cc_threads:2 ~exec_threads:3
                   ~batch_size:8 ())
                ~tables Check.initial_value
            in
            ignore (Bohm.run db txns);
            Bohm.read_latest db));
  }

let mv_engine mode name =
  {
    name;
    execute =
      (fun ~jitter txns ->
        Sim.run ~jitter (fun () ->
            let db = Mv.create ~mode ~workers:4 ~tables Check.initial_value in
            ignore (Mv.run db txns);
            Mv.read_latest db));
  }

let silo_engine =
  {
    name = "occ";
    execute =
      (fun ~jitter txns ->
        Sim.run ~jitter (fun () ->
            let db = Silo.create ~workers:4 ~tables Check.initial_value in
            ignore (Silo.run db txns);
            Silo.read_latest db));
  }

let twopl_engine =
  {
    name = "2pl";
    execute =
      (fun ~jitter txns ->
        Sim.run ~jitter (fun () ->
            let db = Twopl.create ~workers:4 ~tables Check.initial_value in
            ignore (Twopl.run db txns);
            Twopl.read_latest db));
  }

let serializable_engines =
  [
    bohm_ngin;
    mv_engine Bohm_hekaton.Engine.Hekaton "hekaton";
    silo_engine;
    twopl_engine;
  ]

let run_check engine seed =
  let w =
    Check.make_workload ~rows ~txns:60 ~rmws_per_txn:2 ~reads_per_txn:2
      ~seed
  in
  let final_read =
    engine.execute ~jitter:(Rng.create ~seed:(seed * 7)) (Check.txns w)
  in
  Check.check w ~final_read

let test_engine_always_serializable engine () =
  for seed = 1 to 25 do
    match run_check engine seed with
    | Check.Serializable -> ()
    | v ->
        Alcotest.failf "%s seed %d: %s" engine.name seed
          (Check.verdict_to_string v)
  done

let test_si_produces_cycles () =
  (* SI's write-skew shows up as a cycle of rw anti-dependencies. Sweep
     schedules; at least one must yield a non-serializable execution. *)
  let si = mv_engine Bohm_hekaton.Engine.Snapshot "si" in
  let cycles = ref 0 and corrupt = ref 0 in
  for seed = 1 to 40 do
    match run_check si seed with
    | Check.Serializable -> ()
    | Check.Cycle _ -> incr cycles
    | Check.Corrupt _ -> incr corrupt
  done;
  Alcotest.(check int) "no corrupt executions (SI is not broken, just unserializable)" 0
    !corrupt;
  Alcotest.(check bool)
    (Printf.sprintf "cycles found (%d/40)" !cycles)
    true (!cycles > 0)

let test_serial_reference_passes () =
  (* The oracle itself must certify as serializable. *)
  let w = Check.make_workload ~rows ~txns:80 ~rmws_per_txn:2 ~reads_per_txn:2 ~seed:5 in
  let reference = Reference.create ~tables Check.initial_value in
  ignore (Reference.run reference (Check.txns w));
  match Check.check w ~final_read:(Reference.read reference) with
  | Check.Serializable -> ()
  | v -> Alcotest.failf "reference: %s" (Check.verdict_to_string v)

let test_checker_detects_corruption () =
  (* Lie about the final state: the per-key chain no longer ends at the
     reported final writer, which the checker must flag. *)
  let w = Check.make_workload ~rows ~txns:20 ~rmws_per_txn:1 ~reads_per_txn:1 ~seed:9 in
  let reference = Reference.create ~tables Check.initial_value in
  ignore (Reference.run reference (Check.txns w));
  let lying_read _ = Value.of_int 9999 in
  (match Check.check w ~final_read:lying_read with
  | Check.Corrupt _ -> ()
  | v -> Alcotest.failf "expected corruption, got %s" (Check.verdict_to_string v))

let test_workload_validation () =
  Alcotest.(check bool) "footprint too large rejected" true
    (try
       ignore (Check.make_workload ~rows:3 ~txns:1 ~rmws_per_txn:2 ~reads_per_txn:2 ~seed:0);
       false
     with Invalid_argument _ -> true)

let prop_bohm_serializable_under_random_schedules =
  QCheck.Test.make ~count:20 ~name:"BOHM certifies serializable on random schedules"
    QCheck.(int_range 100 100_000)
    (fun seed -> run_check bohm_ngin seed = Check.Serializable)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "certification",
      List.map
        (fun e ->
          Alcotest.test_case (e.name ^ " always serializable") `Quick
            (test_engine_always_serializable e))
        serializable_engines
      @ [
          Alcotest.test_case "SI produces cycles" `Quick test_si_produces_cycles;
          Alcotest.test_case "serial reference passes" `Quick test_serial_reference_passes;
          Alcotest.test_case "checker detects corruption" `Quick test_checker_detects_corruption;
          Alcotest.test_case "workload validation" `Quick test_workload_validation;
        ]
      @ qcheck [ prop_bohm_serializable_under_random_schedules ] );
  ]

let () = Alcotest.run "bohm_serialization" suite
