(* Quickstart: a tiny bank on the BOHM engine, running on real OCaml
   domains.

   Shows the full public API surface in one file: declare a schema, load
   initial values, write stored-procedure transactions with declared
   read/write sets, run a batch, and inspect the result.

     dune exec examples/quickstart.exe *)

module Key = Bohm_txn.Key
module Value = Bohm_txn.Value
module Txn = Bohm_txn.Txn
module Table = Bohm_storage.Table
module Engine = Bohm_core.Engine.Make (Bohm_runtime.Real)

let accounts = Table.make ~tid:0 ~name:"accounts" ~rows:4 ~record_bytes:8
let alice = Table.key accounts ~row:0
let bob = Table.key accounts ~row:1
let carol = Table.key accounts ~row:2
let dave = Table.key accounts ~row:3

(* A transfer is a stored procedure: its footprint (read and write sets)
   is declared up front — that is BOHM's execution model. The logic must
   be a pure function of its reads. *)
let transfer ~id ~source ~target ~amount =
  Txn.make ~id ~read_set:[ source; target ] ~write_set:[ source; target ]
    (fun ctx ->
      let available = Value.to_int (ctx.Txn.read source) in
      if available < amount then Txn.Abort
      else begin
        ctx.Txn.write source (Value.add (ctx.Txn.read source) (-amount));
        ctx.Txn.write target (Value.add (ctx.Txn.read target) amount);
        Txn.Commit
      end)

let () =
  (* 2 concurrency-control threads + 2 execution threads, batches of 64. *)
  let config =
    Bohm_core.Config.make ~cc_threads:2 ~exec_threads:2 ~batch_size:64 ()
  in
  let db = Engine.create config ~tables:[| accounts |] (fun _ -> Value.of_int 100) in
  let txns =
    [|
      transfer ~id:0 ~source:alice ~target:bob ~amount:30;
      transfer ~id:1 ~source:bob ~target:carol ~amount:120;
      transfer ~id:2 ~source:carol ~target:dave ~amount:500 (* must abort *);
      transfer ~id:3 ~source:alice ~target:dave ~amount:70;
    |]
  in
  let stats = Engine.run db txns in
  Format.printf "run: %a@." Bohm_txn.Stats.pp stats;
  let balance name k =
    Format.printf "  %-6s %d@." name (Value.to_int (Engine.read_latest db k))
  in
  balance "alice" alice;
  balance "bob" bob;
  balance "carol" carol;
  balance "dave" dave;
  (* The serialization order is the submission order, so the outcome is
     exactly the serial execution of the four transfers. *)
  assert (Value.to_int (Engine.read_latest db alice) = 0);
  assert (Value.to_int (Engine.read_latest db bob) = 10);
  assert (Value.to_int (Engine.read_latest db carol) = 220);
  assert (Value.to_int (Engine.read_latest db dave) = 170);
  print_endline "quickstart: OK"
