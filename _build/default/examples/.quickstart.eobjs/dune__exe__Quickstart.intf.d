examples/quickstart.mli:
