examples/quickstart.ml: Bohm_core Bohm_runtime Bohm_storage Bohm_txn Format
