examples/write_skew_demo.mli:
