examples/engine_compare.mli:
