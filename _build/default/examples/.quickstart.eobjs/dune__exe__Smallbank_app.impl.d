examples/smallbank_app.ml: Array Bohm_core Bohm_harness Bohm_runtime Bohm_txn Bohm_workload Format
