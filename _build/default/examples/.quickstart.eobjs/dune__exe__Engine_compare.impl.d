examples/engine_compare.ml: Bohm_harness Bohm_txn Bohm_workload List
