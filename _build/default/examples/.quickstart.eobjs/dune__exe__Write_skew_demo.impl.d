examples/write_skew_demo.ml: Bohm_core Bohm_hekaton Bohm_runtime Bohm_storage Bohm_txn Bohm_util Fun List Printf
