examples/durable_bank.ml: Array Bohm_core Bohm_runtime Bohm_storage Bohm_txn Bohm_wal Filename List Printf String Sys
