examples/speculative_orders.mli:
