examples/smallbank_app.mli:
