examples/gc_demo.ml: Array Bohm_core Bohm_runtime Bohm_storage Bohm_txn Printf
