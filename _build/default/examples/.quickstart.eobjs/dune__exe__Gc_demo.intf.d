examples/gc_demo.mli:
