examples/speculative_orders.ml: Bohm_core Bohm_runtime Bohm_storage Bohm_txn Bohm_util Fun List Printf
