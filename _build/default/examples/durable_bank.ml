(* Durability demo: deterministic command logging and crash recovery.

   BOHM's serialization order is the input order, so logging the
   stored-procedure invocations *before* executing them is a complete
   recovery story: replaying the log through a fresh engine reconstructs
   the exact pre-crash state — no physical undo/redo.

     dune exec examples/durable_bank.exe *)

module Key = Bohm_txn.Key
module Value = Bohm_txn.Value
module Txn = Bohm_txn.Txn
module Table = Bohm_storage.Table
module Procedure = Bohm_wal.Procedure
module Durable = Bohm_wal.Wal.Durable.Make (Bohm_runtime.Real)

let accounts = Table.make ~tid:0 ~name:"accounts" ~rows:8 ~record_bytes:8
let key ~row = Table.key accounts ~row

let registry =
  let r = Procedure.create () in
  Procedure.register r ~name:"deposit" (fun ~id ~args ->
      let k = key ~row:args.(0) in
      Txn.make ~id ~read_set:[ k ] ~write_set:[ k ] (fun ctx ->
          ctx.Txn.write k (Value.add (ctx.Txn.read k) args.(1));
          Txn.Commit));
  Procedure.register r ~name:"transfer" (fun ~id ~args ->
      let src = key ~row:args.(0) and dst = key ~row:args.(1) in
      Txn.make ~id ~read_set:[ src; dst ] ~write_set:[ src; dst ] (fun ctx ->
          if Value.to_int (ctx.Txn.read src) < args.(2) then Txn.Abort
          else begin
            ctx.Txn.write src (Value.add (ctx.Txn.read src) (-args.(2)));
            ctx.Txn.write dst (Value.add (ctx.Txn.read dst) args.(2));
            Txn.Commit
          end));
  r

let config = Bohm_core.Config.make ~cc_threads:1 ~exec_threads:2 ~batch_size:16 ()
let inv id proc args = { Procedure.id; proc; args }

let balances db =
  List.init 8 (fun row -> Value.to_int (Durable.read_latest db (key ~row)))

let () =
  let path = Filename.temp_file "durable_bank" ".log" in
  let db =
    Durable.open_db ~path ~registry ~config ~tables:[| accounts |] (fun _ ->
        Value.of_int 100)
  in
  ignore
    (Durable.submit db
       [| inv 0 "deposit" [| 0; 50 |]; inv 1 "transfer" [| 0; 3; 120 |] |]);
  ignore (Durable.submit db [| inv 2 "transfer" [| 3; 7; 60 |] |]);
  let before = balances db in
  Printf.printf "before crash : %s\n"
    (String.concat " " (List.map string_of_int before));

  (* Simulated crash: the handle is dropped without a clean close. Every
     submitted batch was flushed to the log first, so nothing is lost. *)
  let recovered =
    Durable.open_db ~path ~registry ~config ~tables:[| accounts |] (fun _ ->
        Value.of_int 100)
  in
  let after = balances recovered in
  Printf.printf "after recover: %s  (%d batches replayed)\n"
    (String.concat " " (List.map string_of_int after))
    (Durable.recovered_batches recovered);
  assert (before = after);

  (* Life goes on after recovery. *)
  ignore (Durable.submit recovered [| inv 3 "deposit" [| 7; 1 |] |]);
  assert (Value.to_int (Durable.read_latest recovered (key ~row:7)) = 161);
  Durable.close recovered;
  Sys.remove path;
  print_endline "durable_bank: OK (state identical after crash + replay)"
