(* Write-skew demo: the anomaly that separates snapshot isolation from
   serializability (paper section 2, Figure 1).

   Two doctors are on call (x = y = 1). Hospital policy: at least one must
   remain. Each transaction checks the policy against its snapshot and
   takes one doctor off call. Under any serial order one request must see
   the other's effect and abort; under snapshot isolation both can commit
   because their write sets don't overlap. BOHM forbids the anomaly; the
   SI engine exhibits it.

     dune exec examples/write_skew_demo.exe *)

module Key = Bohm_txn.Key
module Value = Bohm_txn.Value
module Txn = Bohm_txn.Txn
module Table = Bohm_storage.Table
module Rng = Bohm_util.Rng
module Sim = Bohm_runtime.Sim
module Bohm = Bohm_core.Engine.Make (Sim)
module Mv = Bohm_hekaton.Engine.Make (Sim)

let table = Table.make ~tid:0 ~name:"oncall" ~rows:2 ~record_bytes:8
let x = Table.key table ~row:0
let y = Table.key table ~row:1

let go_off_call ~id ~target =
  Txn.make ~id ~read_set:[ x; y ] ~write_set:[ target ] (fun ctx ->
      let on_call = Value.to_int (ctx.Txn.read x) + Value.to_int (ctx.Txn.read y) in
      ctx.Txn.spin 20_000 (* paperwork; forces the two requests to overlap *);
      if on_call >= 2 then begin
        ctx.Txn.write target Value.zero;
        Txn.Commit
      end
      else Txn.Abort)

let txns = [| go_off_call ~id:0 ~target:x; go_off_call ~id:1 ~target:y |]

let run_bohm seed =
  Sim.run ~jitter:(Rng.create ~seed) (fun () ->
      let db =
        Bohm.create
          (Bohm_core.Config.make ~cc_threads:1 ~exec_threads:2 ~batch_size:2 ())
          ~tables:[| table |]
          (fun _ -> Value.of_int 1)
      in
      ignore (Bohm.run db txns);
      Value.to_int (Bohm.read_latest db x) + Value.to_int (Bohm.read_latest db y))

let run_si seed =
  Sim.run ~jitter:(Rng.create ~seed) (fun () ->
      let db =
        Mv.create ~mode:Bohm_hekaton.Engine.Snapshot ~workers:2 ~tables:[| table |]
          (fun _ -> Value.of_int 1)
      in
      ignore (Mv.run db txns);
      Value.to_int (Mv.read_latest db x) + Value.to_int (Mv.read_latest db y))

let () =
  let trials = 20 in
  let count f = List.length (List.filter (fun s -> f s = 0) (List.init trials Fun.id)) in
  let bohm_violations = count run_bohm in
  let si_violations = count run_si in
  Printf.printf "policy violations (nobody on call) over %d schedules:\n" trials;
  Printf.printf "  BOHM (serializable)     : %2d\n" bohm_violations;
  Printf.printf "  Snapshot isolation      : %2d\n" si_violations;
  assert (bohm_violations = 0);
  assert (si_violations > 0);
  print_endline "write_skew_demo: OK (SI shows the anomaly, BOHM never does)"
