(* Engine shoot-out: the paper's headline comparison in miniature.

   Runs one YCSB 2RMW-8R workload (high contention) through all five
   engines on the deterministic multicore simulator at 16 simulated
   threads and prints throughput and abort behaviour — the section 4.2.2
   story: BOHM gets multi-version concurrency *and* serializability
   without aborting anybody.

     dune exec examples/engine_compare.exe *)

module Stats = Bohm_txn.Stats
module Ycsb = Bohm_workload.Ycsb
module Runner = Bohm_harness.Runner
module Report = Bohm_harness.Report

let () =
  let rows = 50_000 in
  let spec =
    { Runner.tables = Ycsb.tables ~rows ~record_bytes:1000; init = Ycsb.initial_value }
  in
  let txns =
    Ycsb.generate ~rows ~theta:0.9 ~count:4_000 ~seed:3
      (Ycsb.mixed_profile ~rmws:2 ~reads:8)
  in
  Report.header ~title:"YCSB 2RMW-8R, theta=0.9, 32 simulated threads";
  let rows_data =
    List.map
      (fun engine ->
        let stats = Runner.run_sim engine ~threads:32 spec txns in
        ( Runner.name engine,
          [
            Some (Stats.throughput stats);
            Some (float_of_int stats.Stats.cc_aborts);
            Some (100. *. Stats.abort_rate stats);
          ] ))
      Runner.all
  in
  let rows_data =
    List.sort
      (fun (_, a) (_, b) -> compare (List.nth b 0) (List.nth a 0))
      rows_data
  in
  Report.print_series ~x_label:"engine"
    ~columns:[ "txns/s"; "cc aborts"; "abort %" ]
    ~rows:rows_data;
  print_newline ();
  Report.note "BOHM and 2PL never abort for concurrency-control reasons;";
  Report.note "the optimistic engines pay for contention with retries.";
  print_endline "engine_compare: OK"
