(* Garbage collection demo: BOHM's Condition-3 batch GC (paper 3.3.2).

   Hammers one hot record with read-modify-writes and shows the version
   chain staying bounded with GC on (old versions unlinked once every
   execution thread passes the batch watermark) versus growing without
   bound with GC off.

     dune exec examples/gc_demo.exe *)

module Key = Bohm_txn.Key
module Value = Bohm_txn.Value
module Txn = Bohm_txn.Txn
module Stats = Bohm_txn.Stats
module Table = Bohm_storage.Table
module Sim = Bohm_runtime.Sim
module Engine = Bohm_core.Engine.Make (Sim)

let table = Table.make ~tid:0 ~name:"hot" ~rows:8 ~record_bytes:8
let hot = Table.key table ~row:0

let incr_hot id =
  Txn.make ~id ~read_set:[ hot ] ~write_set:[ hot ] (fun ctx ->
      ctx.Txn.write hot (Value.add (ctx.Txn.read hot) 1);
      Txn.Commit)

let run ~gc =
  Sim.run (fun () ->
      let config =
        Bohm_core.Config.make ~cc_threads:2 ~exec_threads:2 ~batch_size:128 ~gc ()
      in
      let db = Engine.create config ~tables:[| table |] (fun _ -> Value.zero) in
      let txns = Array.init 4_096 incr_hot in
      let stats = Engine.run db txns in
      let collected =
        match Stats.extra stats "gc_collected" with Some f -> int_of_float f | None -> 0
      in
      (Value.to_int (Engine.read_latest db hot), Engine.chain_length db hot, collected))

let () =
  let value_on, chain_on, collected_on = run ~gc:true in
  let value_off, chain_off, collected_off = run ~gc:false in
  Printf.printf "4096 RMWs of one hot record (batch = 128):\n";
  Printf.printf "  gc=on   final=%4d  chain length=%4d  versions collected=%d\n"
    value_on chain_on collected_on;
  Printf.printf "  gc=off  final=%4d  chain length=%4d  versions collected=%d\n"
    value_off chain_off collected_off;
  assert (value_on = 4096 && value_off = 4096);
  assert (chain_off = 4097);
  assert (chain_on < chain_off && collected_on > 0);
  print_endline "gc_demo: OK (same answer, bounded memory)"
