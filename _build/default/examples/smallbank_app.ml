(* SmallBank on BOHM, on real domains: the banking workload the paper
   evaluates in section 4.3, driven end-to-end through the public API with
   invariants checked against the serial reference executor.

     dune exec examples/smallbank_app.exe *)

module Value = Bohm_txn.Value
module Stats = Bohm_txn.Stats
module Smallbank = Bohm_workload.Smallbank
module Engine = Bohm_core.Engine.Make (Bohm_runtime.Real)
module Reference = Bohm_harness.Reference

let customers = 200
let count = 5_000

let () =
  let tables = Smallbank.tables ~customers in
  let txns = Smallbank.generate ~customers ~count ~seed:7 ~spin:200 () in
  let config =
    Bohm_core.Config.make ~cc_threads:2 ~exec_threads:2 ~batch_size:256 ()
  in
  let db = Engine.create config ~tables Smallbank.initial_value in
  let stats = Engine.run db txns in
  Format.printf "SmallBank, %d customers, %d transactions:@." customers count;
  Format.printf "  %a@." Stats.pp stats;

  (* BOHM serializes in submission order, so the serial reference must
     agree exactly — every balance, every abort. *)
  let reference = Reference.create ~tables Smallbank.initial_value in
  let outcomes = Reference.run reference txns in
  let expected_aborts =
    Array.fold_left
      (fun acc o -> match o with Bohm_txn.Txn.Abort -> acc + 1 | _ -> acc)
      0 outcomes
  in
  assert (stats.Stats.logic_aborts = expected_aborts);
  let engine_total = Smallbank.total_money (Engine.read_latest db) ~customers in
  let reference_total = Smallbank.total_money (Reference.read reference) ~customers in
  Format.printf "  total money: %d cents (reference agrees: %b)@." engine_total
    (engine_total = reference_total);
  assert (engine_total = reference_total);
  let mismatches = ref 0 in
  for c = 0 to customers - 1 do
    let sk = Bohm_txn.Key.make ~table:Smallbank.savings_tid ~row:c in
    let ck = Bohm_txn.Key.make ~table:Smallbank.checking_tid ~row:c in
    if
      not
        (Value.equal (Engine.read_latest db sk) (Reference.read reference sk)
        && Value.equal (Engine.read_latest db ck) (Reference.read reference ck))
    then incr mismatches
  done;
  Format.printf "  per-account mismatches vs serial execution: %d@." !mismatches;
  assert (!mismatches = 0);
  print_endline "smallbank_app: OK"
