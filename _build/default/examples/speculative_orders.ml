(* Speculative write-sets: transactions whose footprints depend on data.

   BOHM needs each transaction's write-set before execution. An order
   router cannot declare one statically: which warehouse it debits depends
   on a routing record that other transactions update. The paper's answer
   (section 1/3, citing Calvin) is a trial run against current state to
   predict the footprint, with mispredicted transactions retried — rare,
   because footprint volatility is low.

     dune exec examples/speculative_orders.exe *)

module Key = Bohm_txn.Key
module Value = Bohm_txn.Value
module Txn = Bohm_txn.Txn
module Table = Bohm_storage.Table
module Speculate = Bohm_txn.Speculate
module Rng = Bohm_util.Rng
module Engine = Bohm_core.Engine.Make (Bohm_runtime.Real)

(* Table 0: route pointers (product -> warehouse); table 1: warehouse
   stock. *)
let routes = Table.make ~tid:0 ~name:"routes" ~rows:16 ~record_bytes:8
let stock = Table.make ~tid:1 ~name:"stock" ~rows:4 ~record_bytes:8
let route p = Table.key routes ~row:p
let warehouse w = Table.key stock ~row:w

let init k =
  if Key.table k = 0 then Value.of_int (Key.row k mod 4) (* initial routing *)
  else Value.of_int 1_000 (* initial stock *)

(* Ship one unit of product [p]: reads the route, debits the routed
   warehouse — a data-dependent write-set. *)
let ship ~id ~p =
  Speculate.create ~id (fun ctx ->
      let w = Value.to_int (ctx.Txn.read (route p)) in
      let k = warehouse w in
      ctx.Txn.write k (Value.add (ctx.Txn.read k) (-1));
      Txn.Commit)

(* Re-route product [p] to warehouse [w]: this is what invalidates others'
   predictions. *)
let reroute ~id ~p ~w =
  Speculate.create ~id (fun ctx ->
      ignore (ctx.Txn.read (route p));
      ctx.Txn.write (route p) (Value.of_int w);
      Txn.Commit)

let () =
  let rng = Rng.create ~seed:2026 in
  let orders =
    List.init 400 (fun i ->
        if Rng.int rng 20 = 0 then
          reroute ~id:i ~p:(Rng.int rng 16) ~w:(Rng.int rng 4)
        else ship ~id:i ~p:(Rng.int rng 16))
  in
  let db =
    Engine.create
      (Bohm_core.Config.make ~cc_threads:2 ~exec_threads:2 ~batch_size:64 ())
      ~tables:[| routes; stock |] init
  in
  let committed = ref 0 in
  let run txns =
    let stats = Engine.run db txns in
    committed := !committed + stats.Bohm_txn.Stats.committed;
    stats
  in
  let rounds = Speculate.settle ~run ~read:(Engine.read_latest db) orders in
  let shipped =
    4_000
    - List.fold_left
        (fun acc w -> acc + Value.to_int (Engine.read_latest db (warehouse w)))
        0 [ 0; 1; 2; 3 ]
  in
  let ships = List.length (List.filter (fun _ -> true) orders) in
  ignore ships;
  Printf.printf "400 orders settled in %d speculation round(s)\n" rounds;
  Printf.printf "units shipped: %d; transactions committed: %d\n" shipped !committed;
  (* Every order eventually commits exactly once; every ship debits
     exactly one unit. *)
  assert (!committed = 400);
  let reroutes =
    (* deterministic re-derivation of the mix *)
    let rng = Rng.create ~seed:2026 in
    List.length
      (List.filter Fun.id
         (List.init 400 (fun _ ->
              let is_reroute = Rng.int rng 20 = 0 in
              if is_reroute then begin
                ignore (Rng.int rng 16);
                ignore (Rng.int rng 4)
              end
              else ignore (Rng.int rng 16);
              is_reroute)))
  in
  assert (shipped = 400 - reroutes);
  Printf.printf "speculative_orders: OK (%d reroutes forced retries, none lost)\n"
    reroutes
