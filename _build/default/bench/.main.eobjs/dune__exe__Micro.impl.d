bench/micro.ml: Analyze Array Bechamel Benchmark Bohm_core Bohm_harness Bohm_runtime Bohm_storage Bohm_txn Bohm_util Float Hashtbl Instance List Measure Printf Staged Test Time Toolkit
