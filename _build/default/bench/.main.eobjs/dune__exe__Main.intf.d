bench/main.mli:
