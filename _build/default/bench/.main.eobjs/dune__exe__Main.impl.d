bench/main.ml: Array Bohm_harness List Micro Printf String Sys Unix
