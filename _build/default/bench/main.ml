(* Benchmark harness entry point.

   With no arguments, regenerates every table and figure of the paper's
   evaluation on the simulated multicore machine, runs the ablation
   benches, and finishes with the Bechamel component micro-benchmarks.
   Pass experiment names (fig4 fig5 fig6 fig7 fig8 tab9 fig10
   ablation-batch ablation-annotation ablation-gc ablation-cc-split micro)
   to run a subset; --quick shrinks sweeps for smoke runs; --scale=F
   multiplies transaction counts. *)

module Experiments = Bohm_harness.Experiments

let usage () =
  prerr_endline "usage: main.exe [--quick] [--scale=F] [experiment ...]";
  prerr_endline "experiments:";
  List.iter
    (fun (name, _) -> prerr_endline ("  " ^ name))
    Experiments.experiments;
  prerr_endline "  micro";
  exit 2

let () =
  let quick = ref false in
  let scale = ref 1.0 in
  let selected = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        if arg = "--quick" then quick := true
        else if String.length arg > 8 && String.sub arg 0 8 = "--scale=" then
          scale := float_of_string (String.sub arg 8 (String.length arg - 8))
        else if arg = "--help" || arg = "-h" then usage ()
        else selected := arg :: !selected)
    Sys.argv;
  let selected = List.rev !selected in
  let t0 = Unix.gettimeofday () in
  let run_one name =
    if name = "micro" then Micro.run ()
    else
      match List.assoc_opt name Experiments.experiments with
      | Some f -> List.iter Experiments.print (f ~scale:!scale ~quick:!quick ())
      | None ->
          prerr_endline ("unknown experiment: " ^ name);
          usage ()
  in
  (match selected with
  | [] ->
      Experiments.run_all ~scale:!scale ~quick:!quick ();
      Micro.run ()
  | names -> List.iter run_one names);
  Printf.printf "\nTotal bench wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
